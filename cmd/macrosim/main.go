// Command macrosim runs a single macrochip simulation point and prints its
// metrics — the smallest unit of the paper's evaluation.
//
// Raw-packet mode (figure-6 style):
//
//	macrosim -network point-to-point -pattern uniform -load 0.5
//
// Coherence-workload mode (figure-7/8 style):
//
//	macrosim -network two-phase -workload swaptions -scale 0.5
//
// Networks: token-ring, circuit-switched, point-to-point,
// limited-point-to-point, two-phase, two-phase-alt.
// Patterns: uniform, transpose, neighbor, butterfly.
// Workloads: radix, barnes, blackscholes, densities, forces, swaptions,
// all-to-all, transpose, transpose-MS, neighbor, butterfly.
//
// Worker mode (distributed sweeps):
//
//	macrosim -worker                      # serve cells over stdin/stdout
//	macrosim -connect host:9099           # serve cells over TCP
//
// In worker mode macrosim executes experiment cells for a coordinator
// (cmd/figures -dist-workers/-dist-addr et al.) and prints nothing on
// stdout except protocol; logs go to stderr. SIGTERM drains gracefully:
// the in-flight cell finishes and is answered before the worker exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"macrochip"
	"macrochip/internal/distrib"
	"macrochip/internal/expcache"
	"macrochip/internal/harness"
	"macrochip/internal/metrics"
	"macrochip/internal/networks"
	"macrochip/internal/traffic"
	"macrochip/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("macrosim: ")
	network := flag.String("network", "point-to-point", "network architecture")
	pattern := flag.String("pattern", "", "synthetic pattern for raw-packet mode")
	load := flag.Float64("load", 0.1, "offered load (fraction of 320 GB/s per site)")
	wl := flag.String("workload", "", "coherence workload for benchmark mode: "+strings.Join(workload.Names(), ","))
	scale := flag.Float64("scale", 1.0, "workload instruction-quota scale")
	seed := flag.Int64("seed", 1, "random seed")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON of the run (raw-packet mode; open in Perfetto)")
	metricsPath := flag.String("metrics-csv", "", "write sampled metric time series as CSV (raw-packet mode)")
	dumpConfig := flag.Bool("dumpconfig", false, "print the full parameter block as JSON and exit")
	worker := flag.Bool("worker", false, "serve distributed-sweep cells over stdin/stdout (spawned by a coordinator)")
	connect := flag.String("connect", "", "serve distributed-sweep cells over TCP to the coordinator at host:port")
	cacheDir := flag.String("cache-dir", expcache.DefaultDir(), "result cache directory (worker mode)")
	noCache := flag.Bool("no-cache", false, "disable the result cache (worker mode)")
	cacheURL := flag.String("cache-url", "", "rendezvous daemon base URL for the shared cache tier, e.g. http://host:8080 (worker mode)")
	distDepth := flag.Int("dist-depth", distrib.DefaultCredits, "in-flight cell window advertised to the coordinator (worker mode)")
	flag.Parse()

	// Worker mode must come before anything prints: in -worker mode stdout
	// carries the wire protocol, and a stray banner would be a framing
	// violation the coordinator tears the session down for.
	if *worker || *connect != "" {
		os.Exit(runWorker(*connect, *cacheDir, *noCache, *cacheURL, *distDepth))
	}

	sys := macrochip.NewSystem(macrochip.WithSeed(*seed))
	if *dumpConfig {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sys.Params()); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println(sys)

	switch {
	case *wl != "":
		r, err := sys.RunWorkload(macrochip.Network(*network), *wl, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload %-14s network %s\n", r.Workload, r.Network)
		fmt.Printf("  runtime           %12.1f ns\n", r.RuntimeNS)
		fmt.Printf("  coherence ops     %12d\n", r.Ops)
		fmt.Printf("  latency per op    %12.1f ns\n", r.LatencyPerOpNS)
		fmt.Printf("  network energy    %12.4g J\n", r.NetworkEnergyJ)
		fmt.Printf("  router energy     %12.2f %% of total\n", r.RouterEnergyFraction*100)
		fmt.Printf("  EDP               %12.4g J·s\n", r.EDP)
	case *pattern != "":
		var pt macrochip.LoadPoint
		if *tracePath != "" || *metricsPath != "" {
			var err error
			pt, err = runObserved(sys, *network, *pattern, *load, *seed, *tracePath, *metricsPath)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			var err error
			pt, err = sys.RunLoadPoint(macrochip.Network(*network), *pattern, *load)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("pattern %-10s network %s  load %.1f%%\n", *pattern, *network, *load*100)
		fmt.Printf("  mean latency      %12.1f ns\n", pt.MeanLatencyNS)
		fmt.Printf("  max latency       %12.1f ns\n", pt.MaxLatencyNS)
		fmt.Printf("  accepted          %12.1f GB/s (offered %.1f GB/s)\n", pt.ThroughputGBs, pt.OfferedGBs)
		fmt.Printf("  saturated         %12v\n", pt.Saturated)
		fmt.Printf("  in flight         %12d\n", pt.InFlight)
	default:
		log.Fatal("pass -pattern for raw-packet mode or -workload for benchmark mode")
	}
}

// runObserved is the raw-packet run with the observability layer attached:
// a metrics registry sampled by the periodic probe (written as CSV) and/or
// a Chrome-trace tracer (written as JSON for Perfetto). Sampling is
// read-only, so the printed metrics match an unobserved run exactly.
func runObserved(sys *macrochip.System, network, pattern string, load float64, seed int64, tracePath, metricsPath string) (macrochip.LoadPoint, error) {
	pat, err := traffic.ByName(pattern, sys.Params().Grid)
	if err != nil {
		return macrochip.LoadPoint{}, err
	}
	cfg := harness.DefaultLoadPointConfig()
	cfg.Params = sys.Params()
	cfg.Network = networks.Kind(network)
	cfg.Pattern = pat
	cfg.Load = load
	cfg.Seed = seed
	if metricsPath != "" {
		cfg.Obs.Reg = metrics.NewRegistry()
	}
	if tracePath != "" {
		cfg.Obs.Trace = metrics.NewTracer()
	}
	r := harness.RunLoadPoint(cfg)
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(w *os.File) error {
			return harness.WriteMetricsCSV(w, cfg.Obs.Reg)
		}); err != nil {
			return macrochip.LoadPoint{}, err
		}
		fmt.Printf("wrote %s (%d instruments)\n", metricsPath, cfg.Obs.Reg.Len())
	}
	if tracePath != "" {
		if err := writeFile(tracePath, func(w *os.File) error {
			return cfg.Obs.Trace.WriteJSON(w)
		}); err != nil {
			return macrochip.LoadPoint{}, err
		}
		fmt.Printf("wrote %s (%d events)\n", tracePath, cfg.Obs.Trace.Events())
	}
	return macrochip.LoadPoint{
		Load:          r.Load,
		MeanLatencyNS: r.MeanLatency.Nanoseconds(),
		P95LatencyNS:  r.P95Latency.Nanoseconds(),
		MaxLatencyNS:  r.MaxLatency.Nanoseconds(),
		ThroughputGBs: r.ThroughputGBs,
		OfferedGBs:    r.OfferedGBs,
		Saturated:     r.Saturated,
		InFlight:      r.InFlight,
	}, nil
}

func writeFile(path string, emit func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
