// Command benchjson converts `go test -bench` output on stdin into a stable
// JSON document on stdout, so benchmark baselines (BENCH_pr4.json) can be
// committed and diffed across PRs without parsing the text format twice.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRunLoadPoint -benchmem ./internal/harness | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line: a name, an iteration count, then
// (value, unit) pairs such as "12345 ns/op" or "678901 events/sec".
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "events/sec":
			b.EventsPerSec = v
		}
	}
	return b, true
}
