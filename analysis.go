package macrochip

import (
	"macrochip/internal/complexity"
	"macrochip/internal/harness"
	"macrochip/internal/layout"
	"macrochip/internal/networks"
	"macrochip/internal/photonics"
	"macrochip/internal/power"
	"macrochip/internal/traffic"
)

// PowerRow is one row of the paper's table 5.
type PowerRow struct {
	Network string
	// LossFactor is the laser power multiplier needed to compensate the
	// network's worst-case extra optical loss.
	LossFactor float64
	// LaserWatts is the total static laser power.
	LaserWatts float64
}

// PowerTable computes table 5 (network optical power) from the component
// and loss models.
func (s *System) PowerTable() []PowerRow {
	rows := []PowerRow{}
	for _, r := range power.Table5(s.p) {
		rows = append(rows, PowerRow{Network: r.Network, LossFactor: r.LossFactor, LaserWatts: r.LaserWatts})
	}
	return rows
}

// ComponentRow is one row of the paper's table 6.
type ComponentRow struct {
	Network    string
	Tx, Rx     int
	Waveguides int
	Switches   int
	SwitchKind string
}

// ComponentTable computes table 6 (total optical component counts).
func (s *System) ComponentTable() []ComponentRow {
	rows := []ComponentRow{}
	for _, r := range complexity.Table6(s.p) {
		rows = append(rows, ComponentRow{
			Network: r.Network, Tx: r.Tx, Rx: r.Rx,
			Waveguides: r.Waveguides, Switches: r.Switches, SwitchKind: r.SwitchKind,
		})
	}
	return rows
}

// FloorplanRow estimates one network's physical routing plant.
type FloorplanRow struct {
	Network string
	// WaveguideCM is total routed waveguide length; RoutingAreaCM2 is that
	// length at the 10 µm global waveguide pitch.
	WaveguideCM, RoutingAreaCM2 float64
	// Crossings counts same-layer waveguide crossings (crosstalk sites) —
	// zero for every design except the circuit-switched torus (§4.5).
	Crossings int
	// InterLayerCouplers counts OPxC vias between the two routing layers.
	InterLayerCouplers int
}

// Floorplans estimates the substrate routing plant of every network:
// waveguide length, area, crossings, and inter-layer couplers.
func (s *System) Floorplans() []FloorplanRow {
	rows := []FloorplanRow{}
	for _, f := range layout.Table(s.p) {
		rows = append(rows, FloorplanRow{
			Network: f.Network, WaveguideCM: f.WaveguideCM,
			RoutingAreaCM2: f.RoutingAreaCM2, Crossings: f.Crossings,
			InterLayerCouplers: f.InterLayerCouplers,
		})
	}
	return rows
}

// LinkBudget returns the canonical un-switched site-to-site link budget of
// paper §2 (17 dB total; 4 dB margin at 0 dBm launch) rendered as text.
func (s *System) LinkBudget() string {
	b := photonics.UnswitchedLink(s.p.Comp, 6)
	return b.String()
}

// StaticLaserWatts returns one network's table-5 laser power.
func (s *System) StaticLaserWatts(n Network) float64 {
	return power.StaticLaserWatts(networks.Kind(n), s.p)
}

// YieldReport summarizes the Monte-Carlo link-margin analysis for one
// network under component-loss variation (10% of nominal per component).
type YieldReport struct {
	Network Network
	Trials  int
	// Yield is the fraction of sampled worst-case links that still close
	// (margin ≥ 0 against the −21 dBm receiver sensitivity).
	Yield float64
	// MeanMarginDB, P5MarginDB and MinMarginDB describe the margin
	// distribution; the nominal design margin is 4 dB for every network.
	MeanMarginDB, P5MarginDB, MinMarginDB float64
}

// LinkYield runs a Monte-Carlo link-margin analysis: each optical
// component's insertion loss varies with a 1σ of 10% of nominal, and the
// report gives the fraction of links that still close plus the margin
// distribution. Networks whose worst-case paths cross many switches (the
// circuit-switched torus) spread wider and yield lower than the switchless
// point-to-point design.
func (s *System) LinkYield(n Network, trials int) YieldReport {
	kind := networks.Kind(n)
	loss := power.Loss(kind, s.p)
	hops := 0
	switch kind {
	case networks.CircuitSwitched:
		hops = s.p.CircuitWorstSwitchHops
	case networks.TwoPhase:
		hops = 7
	case networks.TwoPhaseALT:
		hops = 6
	}
	r := photonics.LinkYield(s.p.Comp, loss, hops, trials, photonics.DefaultTolerance(s.p.Comp), s.seed)
	return YieldReport{
		Network: n, Trials: r.Trials, Yield: r.Yield,
		MeanMarginDB: float64(r.MeanMarginDB),
		P5MarginDB:   float64(r.P5MarginDB),
		MinMarginDB:  float64(r.MinMarginDB),
	}
}

// SaturationLoad bisects for the highest offered load (fraction of per-site
// peak) the network sustains under the given pattern — the paper's
// "sustains X% of peak" numbers of §6.1.
func (s *System) SaturationLoad(n Network, pattern string, lo, hi float64) (float64, error) {
	pat, err := traffic.ByName(pattern, s.p.Grid)
	if err != nil {
		return 0, err
	}
	cfg := harness.DefaultLoadPointConfig()
	cfg.Params = s.p
	cfg.Network = networks.Kind(n)
	cfg.Pattern = pat
	cfg.Seed = s.seed
	return harness.SaturationSearch(cfg, lo, hi, 0.01), nil
}
