package macrochip

import (
	"macrochip/internal/core"
	"macrochip/internal/msgpass"
	"macrochip/internal/networks"
	"macrochip/internal/sim"
)

// MessagePassingResult summarizes one bulk-synchronous message-passing run
// (the workload class the paper defers to future work, §8).
type MessagePassingResult struct {
	Pattern string
	Network Network
	// RuntimeNS is total simulated time; ExchangeNS is the mean
	// communication time per iteration (compute excluded).
	RuntimeNS, ExchangeNS float64
	// BytesMoved is total payload delivered.
	BytesMoved uint64
	// EffectiveGBs is aggregate delivered bandwidth during exchanges.
	EffectiveGBs float64
}

// MessagePassingPatterns lists the available patterns: "halo", "alltoall",
// "allreduce", "ring".
func MessagePassingPatterns() []string {
	out := []string{}
	for _, p := range msgpass.Patterns() {
		out = append(out, string(p))
	}
	return out
}

// RunMessagePassing executes a bulk-synchronous message-passing workload:
// `iterations` rounds of computeNS of computation followed by a pattern
// exchange of messageBytes-sized messages, with a barrier per round.
func (s *System) RunMessagePassing(n Network, pattern string, messageBytes int, computeNS float64, iterations int) (MessagePassingResult, error) {
	eng := sim.NewEngine()
	stats := core.NewStats(0)
	net, err := networks.New(networks.Kind(n), eng, s.p, stats)
	if err != nil {
		return MessagePassingResult{}, err
	}
	r, err := msgpass.NewRunner(eng, s.p, net, msgpass.Config{
		Pattern:      msgpass.Pattern(pattern),
		MessageBytes: messageBytes,
		ComputeNS:    computeNS,
		Iterations:   iterations,
	})
	if err != nil {
		return MessagePassingResult{}, err
	}
	res := r.Run()
	return MessagePassingResult{
		Pattern:      pattern,
		Network:      n,
		RuntimeNS:    res.Runtime.Nanoseconds(),
		ExchangeNS:   res.ExchangeNS,
		BytesMoved:   res.BytesMoved,
		EffectiveGBs: res.EffectiveGBs,
	}, nil
}
